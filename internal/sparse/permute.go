package sparse

import "fmt"

// A Perm describes a matrix ordering in new-to-old form: position i of the
// reordered matrix holds row (and, for symmetric permutations, column)
// Perm[i] of the original matrix. This is the order in which traversal-based
// algorithms such as Cuthill-McKee visit vertices.
type Perm []int

// Identity returns the identity permutation of length n.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// PermError describes the first way a permutation fails to be a bijection
// on {0, …, N-1}. Perm.Validate returns it, and the permutation entry
// points propagate it, so callers can recognise a buggy ordering with
// errors.As before it corrupts a matrix.
type PermError struct {
	N     int // permutation length
	Index int // offending position
	Value int // value found at Index
	Dup   int // earlier position holding the same value; -1 for a range error
}

func (e *PermError) Error() string {
	if e.Dup >= 0 {
		return fmt.Sprintf("sparse: permutation of length %d maps positions %d and %d to the same value %d",
			e.N, e.Dup, e.Index, e.Value)
	}
	return fmt.Sprintf("sparse: permutation of length %d has out-of-range value %d at position %d",
		e.N, e.Value, e.Index)
}

// Validate checks that p is a bijection on {0, …, len(p)-1}, returning a
// *PermError locating the first out-of-range or duplicated value.
func (p Perm) Validate() error {
	seen := make([]int32, len(p))
	for i := range seen {
		seen[i] = -1
	}
	for i, v := range p {
		if v < 0 || v >= len(p) {
			return &PermError{N: len(p), Index: i, Value: v, Dup: -1}
		}
		if j := seen[v]; j >= 0 {
			return &PermError{N: len(p), Index: i, Value: v, Dup: int(j)}
		}
		seen[v] = int32(i)
	}
	return nil
}

// IsValid reports whether p is a bijection on {0, …, len(p)-1}.
func (p Perm) IsValid() bool { return p.Validate() == nil }

// Inverse returns the old-to-new permutation q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Compose returns the permutation r with r[i] = p[q[i]]; applying r is
// equivalent to applying p first and then q to the result.
func (p Perm) Compose(q Perm) Perm {
	r := make(Perm, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// PermuteSymmetric returns P·A·Pᵀ, the matrix with rows and columns
// simultaneously reordered by p (new-to-old). All orderings in the study
// except Gray are symmetric permutations.
func PermuteSymmetric(a *CSR, p Perm) (*CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: symmetric permutation of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	if len(p) != a.Rows {
		return nil, fmt.Errorf("sparse: permutation length %d, want %d", len(p), a.Rows)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inv := p.Inverse()
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for newI := 0; newI < a.Rows; newI++ {
		b.RowPtr[newI+1] = b.RowPtr[newI] + a.RowNNZ(p[newI])
	}
	for newI := 0; newI < a.Rows; newI++ {
		oldI := p[newI]
		dst := b.RowPtr[newI]
		for k := a.RowPtr[oldI]; k < a.RowPtr[oldI+1]; k++ {
			b.ColIdx[dst] = int32(inv[a.ColIdx[k]])
			b.Val[dst] = a.Val[k]
			dst++
		}
	}
	b.SortRows()
	return b, nil
}

// PermuteRows returns P·A, the matrix with only its rows reordered by p
// (new-to-old); columns are left in place. The Gray ordering is applied this
// way because it does not preserve symmetry.
func PermuteRows(a *CSR, p Perm) (*CSR, error) {
	if len(p) != a.Rows {
		return nil, fmt.Errorf("sparse: permutation length %d, want %d rows", len(p), a.Rows)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for newI := 0; newI < a.Rows; newI++ {
		b.RowPtr[newI+1] = b.RowPtr[newI] + a.RowNNZ(p[newI])
	}
	for newI := 0; newI < a.Rows; newI++ {
		oldI := p[newI]
		dst := b.RowPtr[newI]
		n := copy(b.ColIdx[dst:b.RowPtr[newI+1]], a.ColIdx[a.RowPtr[oldI]:a.RowPtr[oldI+1]])
		copy(b.Val[dst:dst+n], a.Val[a.RowPtr[oldI]:a.RowPtr[oldI+1]])
	}
	return b, nil
}

// PermuteCols returns A·Pᵀ, the matrix with its columns relabelled by p
// (new-to-old): old column p[j] becomes column j.
func PermuteCols(a *CSR, p Perm) (*CSR, error) {
	if len(p) != a.Cols {
		return nil, fmt.Errorf("sparse: permutation length %d, want %d cols", len(p), a.Cols)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inv := p.Inverse()
	b := a.Clone()
	for k := range b.ColIdx {
		b.ColIdx[k] = int32(inv[b.ColIdx[k]])
	}
	b.SortRows()
	return b, nil
}
