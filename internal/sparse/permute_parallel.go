package sparse

import (
	"fmt"
	"sort"

	"sparseorder/internal/par"
)

// Worker-count convention shared by the parallel variants in this package
// (and mirrored by internal/graph, internal/metrics and internal/reorder):
// 0 means GOMAXPROCS, 1 runs the exact serial code path, and any positive
// count bounds the goroutines used. All variants produce output
// byte-identical to their serial counterpart at every worker count: the
// RowPtr prefix sum fixes each output row's offset up front, so row ranges
// are filled independently, and within-row sorting is by unique column
// indices whose sorted order does not depend on the sorting algorithm.

// PermuteSymmetricWorkers is PermuteSymmetric computed with a row-range-
// parallel count/scatter/sort pipeline over the given worker count.
func PermuteSymmetricWorkers(a *CSR, p Perm, workers int) (*CSR, error) {
	if par.Resolve(workers) == 1 {
		return PermuteSymmetric(a, p)
	}
	if a.Rows != a.Cols {
		return nil, errNonSquareSym(a)
	}
	if err := checkPerm(p, a.Rows, ""); err != nil {
		return nil, err
	}
	w := par.Resolve(workers)
	inv := p.Inverse()
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	// Count in parallel, prefix-sum serially (O(rows)), scatter and sort
	// each row range in parallel.
	par.Ranges(a.Rows, w, func(_, lo, hi int) {
		for newI := lo; newI < hi; newI++ {
			b.RowPtr[newI+1] = a.RowNNZ(p[newI])
		}
	})
	for newI := 0; newI < a.Rows; newI++ {
		b.RowPtr[newI+1] += b.RowPtr[newI]
	}
	par.Ranges(a.Rows, w, func(_, lo, hi int) {
		ls := longRowSorter{n: a.Cols}
		for newI := lo; newI < hi; newI++ {
			oldI := p[newI]
			dst := b.RowPtr[newI]
			for k := a.RowPtr[oldI]; k < a.RowPtr[oldI+1]; k++ {
				b.ColIdx[dst] = int32(inv[a.ColIdx[k]])
				b.Val[dst] = a.Val[k]
				dst++
			}
			cols, vals := b.ColIdx[b.RowPtr[newI]:dst], b.Val[b.RowPtr[newI]:dst]
			if len(cols) > longRowCutoff {
				ls.sort(cols, vals)
			} else {
				sortRow(cols, vals)
			}
		}
	})
	return b, nil
}

// PermuteRowsWorkers is PermuteRows computed with row-range-parallel count
// and copy passes over the given worker count.
func PermuteRowsWorkers(a *CSR, p Perm, workers int) (*CSR, error) {
	if par.Resolve(workers) == 1 {
		return PermuteRows(a, p)
	}
	if err := checkPerm(p, a.Rows, " rows"); err != nil {
		return nil, err
	}
	w := par.Resolve(workers)
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, a.Rows+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	par.Ranges(a.Rows, w, func(_, lo, hi int) {
		for newI := lo; newI < hi; newI++ {
			b.RowPtr[newI+1] = a.RowNNZ(p[newI])
		}
	})
	for newI := 0; newI < a.Rows; newI++ {
		b.RowPtr[newI+1] += b.RowPtr[newI]
	}
	par.Ranges(a.Rows, w, func(_, lo, hi int) {
		for newI := lo; newI < hi; newI++ {
			oldI := p[newI]
			dst := b.RowPtr[newI]
			copy(b.ColIdx[dst:b.RowPtr[newI+1]], a.ColIdx[a.RowPtr[oldI]:a.RowPtr[oldI+1]])
			copy(b.Val[dst:b.RowPtr[newI+1]], a.Val[a.RowPtr[oldI]:a.RowPtr[oldI+1]])
		}
	})
	return b, nil
}

// SortRowsWorkers sorts every row's columns (and aligned values) in
// ascending order like SortRows, splitting the rows across workers. Rows
// with duplicate column indices (invalid CSR, which SortRows exists to
// repair en route to deduplication) sort their duplicates in
// insertion-stable order at workers > 1; SortRows makes no ordering
// promise for duplicates either.
func (a *CSR) SortRowsWorkers(workers int) {
	if par.Resolve(workers) == 1 {
		a.SortRows()
		return
	}
	par.Ranges(a.Rows, par.Resolve(workers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			l, h := a.RowPtr[i], a.RowPtr[i+1]
			sortRow(a.ColIdx[l:h], a.Val[l:h])
		}
	})
}

func errNonSquareSym(a *CSR) error {
	return fmt.Errorf("sparse: symmetric permutation of non-square %dx%d matrix", a.Rows, a.Cols)
}

// checkPerm validates a permutation the same way the serial entry points
// do, with matching error text.
func checkPerm(p Perm, n int, suffix string) error {
	if len(p) != n {
		return fmt.Errorf("sparse: permutation length %d, want %d%s", len(p), n, suffix)
	}
	return p.Validate()
}

func sortLongRow(cols []int32, vals []float64) {
	sort.Sort(&colValSort{cols, vals})
}

// longRowCutoff is the row length above which insertion sort loses to the
// alternatives; rows this long go to longRowSorter or sortLongRow.
const longRowCutoff = 48

// longRowSorter counting-sorts long rows with unique column indices (the
// CSR invariant inside PermuteSymmetricWorkers): values are parked at
// their column slot in a generation-stamped scratch of the matrix width,
// then collected by an ascending scan of the row's column span. The scan
// is sequential memory traffic, so for rows that occupy a decent fraction
// of their span it is far cheaper than a comparison sort; sparse long
// rows (span > ~16 slots per nonzero) fall back to sortLongRow. The
// output — unique columns ascending — is what every sort produces, so
// this changes nothing but time. Not safe for rows with duplicate
// columns, which would collapse to one slot.
type longRowSorter struct {
	n     int // matrix column count (scratch width)
	gen   int32
	stamp []int32
	val   []float64
}

func (s *longRowSorter) sort(cols []int32, vals []float64) {
	minC, maxC := cols[0], cols[0]
	for _, c := range cols[1:] {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if span := int(maxC-minC) + 1; span > 16*len(cols) {
		sortLongRow(cols, vals)
		return
	}
	if s.stamp == nil {
		s.stamp = make([]int32, s.n)
		s.val = make([]float64, s.n)
		s.gen = 0
	}
	s.gen++
	for k, c := range cols {
		s.stamp[c] = s.gen
		s.val[c] = vals[k]
	}
	k := 0
	for c := minC; c <= maxC; c++ {
		if s.stamp[c] == s.gen {
			cols[k] = c
			vals[k] = s.val[c]
			k++
		}
	}
}

// sortRow sorts one row's (column, value) pairs by column. Sparse rows are
// short, so insertion sort beats the interface-based sort.Sort for the
// common case; long rows fall back to colValSort.
func sortRow(cols []int32, vals []float64) {
	if len(cols) > 48 {
		sortLongRow(cols, vals)
		return
	}
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}
