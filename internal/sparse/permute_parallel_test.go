package sparse

import (
	"math/rand"
	"runtime"
	"testing"
)

// workerCounts are the counts the determinism contract is tested at:
// serial, small parallel, the benchmark's 4, GOMAXPROCS and the two
// "resolve to a default" inputs.
func workerCounts() []int {
	return []int{1, 2, 3, 4, runtime.GOMAXPROCS(0), 0, -1}
}

func randomPerm(rng *rand.Rand, n int) Perm {
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestPermuteSymmetricWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 17, 97, 256} {
		a := randomCSR(rng, n, n, 6*n)
		p := randomPerm(rng, n)
		want, err := PermuteSymmetric(a, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts() {
			got, err := PermuteSymmetricWorkers(a, p, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if !got.Equal(want) {
				t.Fatalf("n=%d workers=%d: result differs from serial", n, w)
			}
		}
	}
}

// TestPermuteSymmetricWorkersDenseRows drives rows through both long-row
// sort paths: a dense row (counting sort over its span) and a long but
// widely spread row (span too large, comparison-sort fallback).
func TestPermuteSymmetricWorkersDenseRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 3000
	coo := NewCOO(n, n, 4*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 1)
		coo.Append(i, rng.Intn(n), rng.NormFloat64())
	}
	for j := 0; j < 200; j++ { // dense row 5: contiguous span, counting path
		coo.Append(5, 700+j, float64(j))
	}
	for j := 0; j < 60; j++ { // long sparse row 9: span ~n >> 16*60, fallback
		coo.Append(9, rng.Intn(n), float64(j))
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	p := randomPerm(rng, n)
	want, err := PermuteSymmetric(a, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		got, err := PermuteSymmetricWorkers(a, p, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: result differs from serial", w)
		}
	}
}

func TestPermuteRowsWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Rectangular on purpose: PermuteRows permutes rows only.
	a := randomCSR(rng, 120, 40, 700)
	p := randomPerm(rng, 120)
	want, err := PermuteRows(a, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		got, err := PermuteRowsWorkers(a, p, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: result differs from serial", w)
		}
	}
}

func TestPermuteWorkersErrorsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rect := randomCSR(rng, 4, 5, 8)
	square := randomCSR(rng, 5, 5, 10)
	cases := []struct {
		name string
		a    *CSR
		p    Perm
	}{
		{"non-square", rect, Identity(4)},
		{"short perm", square, Identity(3)},
		{"repeated entry", square, Perm{0, 1, 2, 3, 3}},
	}
	for _, c := range cases {
		_, serialErr := PermuteSymmetric(c.a, c.p)
		if serialErr == nil {
			t.Fatalf("%s: serial accepted bad input", c.name)
		}
		for _, w := range []int{2, 4} {
			_, err := PermuteSymmetricWorkers(c.a, c.p, w)
			if err == nil || err.Error() != serialErr.Error() {
				t.Errorf("%s workers=%d: error %v, want %v", c.name, w, err, serialErr)
			}
		}
	}
	// Rows variant: only the permutation is checked, against Rows.
	_, serialErr := PermuteRows(square, Identity(3))
	for _, w := range []int{2, 4} {
		_, err := PermuteRowsWorkers(square, Identity(3), w)
		if err == nil || err.Error() != serialErr.Error() {
			t.Errorf("rows workers=%d: error %v, want %v", w, err, serialErr)
		}
	}
}

// unsortedCSR builds a CSR whose rows are valid but deliberately out of
// column order, including one row longer than the insertion-sort cutoff.
func unsortedCSR(rng *rand.Rand, rows, cols int) *CSR {
	a := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		n := 1 + rng.Intn(6)
		if i == rows/2 {
			n = 80 // force the long-row sort path
		}
		seen := map[int32]bool{}
		for len(seen) < n && len(seen) < cols {
			seen[int32(rng.Intn(cols))] = true
		}
		for c := range seen {
			a.ColIdx = append(a.ColIdx, c)
			a.Val = append(a.Val, rng.NormFloat64())
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	return a
}

func TestSortRowsWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := unsortedCSR(rng, 60, 200)
	want := a.Clone()
	want.SortRows()
	for _, w := range workerCounts() {
		got := a.Clone()
		got.SortRowsWorkers(w)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: sorted result differs from serial SortRows", w)
		}
	}
}

func benchPermuteMatrix() (*CSR, Perm) {
	rng := rand.New(rand.NewSource(99))
	a := randomCSR(rng, 20000, 20000, 200000)
	return a, randomPerm(rng, a.Rows)
}

func BenchmarkReorderPermuteSymmetric(b *testing.B) {
	a, p := benchPermuteMatrix()
	for _, w := range []int{1, 4} {
		b.Run(benchName(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := PermuteSymmetricWorkers(a, p, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(workers int) string {
	if workers == 1 {
		return "serial"
	}
	return "workers4"
}
