package sparse

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// small returns the 3x3 matrix
//
//	[1 0 2]
//	[0 3 0]
//	[4 0 5]
func small(t *testing.T) *CSR {
	t.Helper()
	coo := NewCOO(3, 3, 5)
	coo.Append(0, 0, 1)
	coo.Append(0, 2, 2)
	coo.Append(1, 1, 3)
	coo.Append(2, 0, 4)
	coo.Append(2, 2, 5)
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatalf("ToCSR: %v", err)
	}
	return a
}

func randomCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	coo := NewCOO(rows, cols, nnz)
	for k := 0; k < nnz; k++ {
		coo.Append(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return a
}

func TestToCSRBasic(t *testing.T) {
	a := small(t)
	if a.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", a.NNZ())
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantPtr := []int{0, 2, 3, 5}
	if !reflect.DeepEqual(a.RowPtr, wantPtr) {
		t.Errorf("RowPtr = %v, want %v", a.RowPtr, wantPtr)
	}
	wantCols := []int32{0, 2, 1, 0, 2}
	if !reflect.DeepEqual(a.ColIdx, wantCols) {
		t.Errorf("ColIdx = %v, want %v", a.ColIdx, wantCols)
	}
	wantVals := []float64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(a.Val, wantVals) {
		t.Errorf("Val = %v, want %v", a.Val, wantVals)
	}
}

func TestToCSRSumsDuplicates(t *testing.T) {
	coo := NewCOO(2, 2, 4)
	coo.Append(0, 1, 1)
	coo.Append(0, 1, 2)
	coo.Append(1, 0, 5)
	coo.Append(0, 1, 3)
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatalf("ToCSR: %v", err)
	}
	if a.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 after duplicate summing", a.NNZ())
	}
	cols, vals := a.Row(0)
	if cols[0] != 1 || vals[0] != 6 {
		t.Errorf("row 0 = (%v, %v), want col 1 value 6", cols, vals)
	}
}

func TestToCSRRejectsOutOfRange(t *testing.T) {
	coo := NewCOO(2, 2, 1)
	coo.Append(0, 5, 1)
	if _, err := coo.ToCSR(); err == nil {
		t.Fatal("ToCSR accepted out-of-range column")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	a := small(t)
	a.ColIdx[0] = 99
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted out-of-range column")
	}
	a = small(t)
	a.ColIdx[0], a.ColIdx[1] = a.ColIdx[1], a.ColIdx[0]
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted unsorted columns")
	}
	a = small(t)
	a.RowPtr[1] = 4
	a.RowPtr[2] = 3
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted non-monotone RowPtr")
	}
}

func TestTransposeKnown(t *testing.T) {
	a := small(t)
	at := a.Transpose()
	if err := at.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	// Aᵀ[0] should be {0:1, 2:4}.
	cols, vals := at.Row(0)
	if len(cols) != 2 || cols[0] != 0 || vals[0] != 1 || cols[1] != 2 || vals[1] != 4 {
		t.Errorf("Aᵀ row 0 = (%v, %v)", cols, vals)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		a := randomCSR(rng, 1+rng.Intn(30), 1+rng.Intn(30), rng.Intn(150))
		if !a.Transpose().Transpose().Equal(a) {
			t.Fatal("transpose twice != identity")
		}
	}
}

func TestSymmetrizeProducesSymmetricPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(25)
		a := randomCSR(rng, n, n, rng.Intn(120))
		s, err := Symmetrize(a)
		if err != nil {
			t.Fatalf("Symmetrize: %v", err)
		}
		if !s.IsStructurallySymmetric() {
			t.Fatal("A+Aᵀ not structurally symmetric")
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
}

func TestSymmetrizeRejectsRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 3, 4, 5)
	if _, err := Symmetrize(a); err == nil {
		t.Error("Symmetrize accepted rectangular matrix")
	}
}

func TestAddValues(t *testing.T) {
	a := small(t)
	c, err := Add(a, a)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	for k := range c.Val {
		if c.Val[k] != 2*a.Val[k] {
			t.Fatalf("A+A value mismatch at %d", k)
		}
	}
}

func TestPermIsValid(t *testing.T) {
	if !Identity(5).IsValid() {
		t.Error("identity should be valid")
	}
	if (Perm{0, 0, 1}).IsValid() {
		t.Error("repeated entry accepted")
	}
	if (Perm{0, 3}).IsValid() {
		t.Error("out-of-range entry accepted")
	}
	if !(Perm{}).IsValid() {
		t.Error("empty permutation should be valid")
	}
}

func TestPermInverseProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := Perm(rand.New(rand.NewSource(seed)).Perm(n))
		inv := p.Inverse()
		for i := range p {
			if inv[p[i]] != i || p[inv[i]] != i {
				return false
			}
		}
		return inv.IsValid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermuteSymmetricRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(30)
		a := randomCSR(rng, n, n, rng.Intn(200))
		p := Perm(rng.Perm(n))
		b, err := PermuteSymmetric(a, p)
		if err != nil {
			t.Fatalf("PermuteSymmetric: %v", err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("permuted invalid: %v", err)
		}
		back, err := PermuteSymmetric(b, p.Inverse())
		if err != nil {
			t.Fatalf("inverse permute: %v", err)
		}
		if !back.Equal(a) {
			t.Fatal("permute then inverse-permute != original")
		}
	}
}

func TestPermuteSymmetricKnown(t *testing.T) {
	a := small(t)
	// Reverse ordering: new row 0 = old row 2, etc.
	p := Perm{2, 1, 0}
	b, err := PermuteSymmetric(a, p)
	if err != nil {
		t.Fatalf("PermuteSymmetric: %v", err)
	}
	// b[0][0] = a[2][2] = 5, b[0][2] = a[2][0] = 4.
	cols, vals := b.Row(0)
	if len(cols) != 2 || cols[0] != 0 || vals[0] != 5 || cols[1] != 2 || vals[1] != 4 {
		t.Errorf("permuted row 0 = (%v, %v)", cols, vals)
	}
}

func TestPermuteRowsKnown(t *testing.T) {
	a := small(t)
	p := Perm{1, 2, 0}
	b, err := PermuteRows(a, p)
	if err != nil {
		t.Fatalf("PermuteRows: %v", err)
	}
	cols, vals := b.Row(0) // old row 1
	if len(cols) != 1 || cols[0] != 1 || vals[0] != 3 {
		t.Errorf("permuted row 0 = (%v, %v), want old row 1", cols, vals)
	}
}

func TestPermuteColsInverseOfRowsOnTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 12, 12, 60)
	p := Perm(rng.Perm(12))
	viaCols, err := PermuteCols(a, p)
	if err != nil {
		t.Fatalf("PermuteCols: %v", err)
	}
	rowsOfT, err := PermuteRows(a.Transpose(), p)
	if err != nil {
		t.Fatalf("PermuteRows: %v", err)
	}
	if !viaCols.Transpose().Equal(rowsOfT) {
		t.Error("(A·Pᵀ)ᵀ != P·Aᵀ")
	}
}

func TestPermuteRejectsInvalid(t *testing.T) {
	a := small(t)
	if _, err := PermuteSymmetric(a, Perm{0, 0, 1}); err == nil {
		t.Error("accepted non-bijective permutation")
	}
	if _, err := PermuteSymmetric(a, Perm{0, 1}); err == nil {
		t.Error("accepted wrong-length permutation")
	}
	if _, err := PermuteRows(a, Perm{0, 1}); err == nil {
		t.Error("PermuteRows accepted wrong-length permutation")
	}
}

func TestExpandSymmetric(t *testing.T) {
	coo := NewCOO(3, 3, 2)
	coo.Append(1, 0, 7)
	coo.Append(2, 2, 1)
	a, err := coo.ExpandSymmetric().ToCSR()
	if err != nil {
		t.Fatalf("ToCSR: %v", err)
	}
	if a.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (mirror added, diagonal not doubled)", a.NNZ())
	}
	if !a.IsStructurallySymmetric() {
		t.Error("expanded matrix not symmetric")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomCSR(rng, 17, 13, 80)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !a.Equal(b) {
		t.Error("round trip changed the matrix")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 3
1 1 2.0
2 1 -1.0
3 3 4.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if a.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 (off-diagonal mirrored)", a.NNZ())
	}
	if !a.IsStructurallySymmetric() {
		t.Error("not symmetric after expansion")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n"
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if a.NNZ() != 2 || a.Val[0] != 1 {
		t.Errorf("pattern read: nnz=%d val0=%v", a.NNZ(), a.Val[0])
	}
}

func TestMatrixMarketRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"not a matrix market file\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in[:20])
		}
	}
}

func TestPermutationFileRoundTrip(t *testing.T) {
	p := Perm{3, 1, 0, 2}
	var buf bytes.Buffer
	if err := WritePermutation(&buf, p); err != nil {
		t.Fatalf("write: %v", err)
	}
	q, err := ReadPermutation(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("round trip: got %v want %v", q, p)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := small(t)
	b := a.Clone()
	b.Val[0] = 99
	b.ColIdx[0] = 1
	if a.Val[0] == 99 || a.ColIdx[0] == 1 {
		t.Error("Clone shares storage")
	}
}

func TestSortRowsRepairs(t *testing.T) {
	a := small(t)
	a.ColIdx[0], a.ColIdx[1] = a.ColIdx[1], a.ColIdx[0]
	a.Val[0], a.Val[1] = a.Val[1], a.Val[0]
	a.SortRows()
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate after SortRows: %v", err)
	}
	if !a.Equal(small(t)) {
		t.Error("SortRows changed content")
	}
}

func TestComposePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 20
	a := randomCSR(rng, n, n, 100)
	p := Perm(rng.Perm(n))
	q := Perm(rng.Perm(n))
	ap, err := PermuteRows(a, p)
	if err != nil {
		t.Fatal(err)
	}
	apq, err := PermuteRows(ap, q)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := PermuteRows(a, p.Compose(q))
	if err != nil {
		t.Fatal(err)
	}
	if !apq.Equal(direct) {
		t.Error("Compose does not match sequential application")
	}
}

func TestFromCSRRoundTripQuick(t *testing.T) {
	f := func(seed int64, rowsRaw, colsRaw, nnzRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rowsRaw%40) + 1
		cols := int(colsRaw%40) + 1
		a := randomCSR(rng, rows, cols, int(nnzRaw))
		b, err := FromCSR(a).ToCSR()
		return err == nil && a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPatternEqualIgnoresValues(t *testing.T) {
	a := small(t)
	b := a.Clone()
	for k := range b.Val {
		b.Val[k] *= 3
	}
	if !a.PatternEqual(b) {
		t.Error("PatternEqual should ignore values")
	}
	if a.Equal(b) {
		t.Error("Equal should compare values")
	}
}

func TestRowAccessors(t *testing.T) {
	a := small(t)
	if a.RowNNZ(0) != 2 || a.RowNNZ(1) != 1 {
		t.Error("RowNNZ wrong")
	}
	cols, vals := a.Row(2)
	if len(cols) != 2 || vals[1] != 5 {
		t.Error("Row accessor wrong")
	}
}

func TestMatrixMarketRejectsNegativeSizes(t *testing.T) {
	for _, in := range []string{
		"%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 -5\n1 1 1\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("accepted negative size line: %q", in[:60])
		}
	}
}

// TestMatrixMarketRejectsWrappedIndex feeds an index that, narrowed to
// int32, would wrap back inside the matrix dimensions (4294967298-1 =
// 2^32+1 → int32 1). Before index validation moved to read time this
// silently corrupted the matrix; it must be a clear error.
func TestMatrixMarketRejectsWrappedIndex(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n" +
		"2 2 2\n" +
		"1 1 1.0\n" +
		"4294967298 1 7.0\n"
	_, err := ReadMatrixMarket(strings.NewReader(in))
	if err == nil {
		t.Fatal("accepted a 64-bit row index that wraps into range")
	}
	if !strings.Contains(err.Error(), "outside 1..2") {
		t.Errorf("error %q does not name the valid range", err)
	}
}

func TestMatrixMarketRejectsOutOfRangeIndices(t *testing.T) {
	for _, entry := range []string{"0 1 1.0", "3 1 1.0", "1 0 1.0", "1 3 1.0", "-1 1 1.0"} {
		in := "%%MatrixMarket matrix coordinate real general\n2 2 1\n" + entry + "\n"
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("accepted entry %q on a 2x2 matrix", entry)
		}
	}
}

func TestMatrixMarketRejectsHugeDimensions(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n3000000000 2 1\n1 1 1.0\n"
	if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
		t.Error("accepted dimensions beyond the int32 index range")
	}
}

// TestMatrixMarketBannerEOFTolerance checks the banner read mirrors the
// size-line EOF tolerance: a stream that ends (without newline) right
// after the banner is judged on the banner's content.
func TestMatrixMarketBannerEOFTolerance(t *testing.T) {
	// Valid banner, nothing else: the size line is what is missing.
	_, err := ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate real general"))
	if err == nil || !strings.Contains(err.Error(), "missing size line") {
		t.Errorf("banner-only stream: err = %v, want missing size line", err)
	}
	// Malformed banner, no newline: must report the malformed banner, not
	// a spurious read error.
	_, err = ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix"))
	if err == nil || !strings.Contains(err.Error(), "malformed Matrix Market banner") {
		t.Errorf("truncated banner: err = %v, want malformed banner", err)
	}
	// Empty stream still reports the read failure.
	_, err = ReadMatrixMarket(strings.NewReader(""))
	if err == nil || !strings.Contains(err.Error(), "reading banner") {
		t.Errorf("empty stream: err = %v, want reading banner", err)
	}
}

func TestReadPermutationBannerEOFTolerance(t *testing.T) {
	_, err := ReadPermutation(strings.NewReader("%%MatrixMarket matrix array integer general"))
	if err == nil || !strings.Contains(err.Error(), "missing size line") {
		t.Errorf("banner-only permutation: err = %v, want missing size line", err)
	}
}

func TestCOOAppendOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Append silently narrowed an out-of-int32-range index")
		}
	}()
	c := NewCOO(2, 2, 1)
	c.Append(1<<32+1, 0, 1)
}
