package spmv

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"sparseorder/internal/sparse"
)

// Mul2DAtomic is the ablation variant of the 2D kernel (see DESIGN.md):
// instead of accumulating boundary rows thread-locally and combining them
// in a sequential fix-up pass, every partial row sum is added to y with a
// compare-and-swap loop. It is measurably slower under contention, which
// is why the paper's formulation — and Mul2D — handle the first and last
// row of each thread specially.
func Mul2DAtomic(a *sparse.CSR, x, y []float64, p *Plan2D) error {
	if err := checkDims(a, x, y); err != nil {
		return err
	}
	if err := p.CheckPlan(a); err != nil {
		return err
	}
	if p.Threads == 1 {
		serialUnchecked(a, x, y)
		return nil
	}
	var wg sync.WaitGroup
	zb := RowBlocks1D(a.Rows, p.Threads)
	for t := 0; t < p.Threads; t++ {
		lo, hi := zb[t], zb[t+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(y []float64) {
			defer wg.Done()
			for i := range y {
				y[i] = 0
			}
		}(y[lo:hi])
	}
	wg.Wait()

	for t := 0; t < p.Threads; t++ {
		kLo, kHi := p.KSplit[t], p.KSplit[t+1]
		if kLo >= kHi {
			continue
		}
		wg.Add(1)
		go func(t, kLo, kHi int) {
			defer wg.Done()
			r := p.RowStart[t]
			for k := kLo; k < kHi; {
				rowEnd := a.RowPtr[r+1]
				hi := rowEnd
				if kHi < hi {
					hi = kHi
				}
				sum := 0.0
				for ; k < hi; k++ {
					sum += a.Val[k] * x[a.ColIdx[k]]
				}
				if a.RowPtr[r] >= kLo && rowEnd <= kHi {
					y[r] = sum
				} else {
					atomicAdd(&y[r], sum)
				}
				if k == rowEnd {
					r++
				}
			}
		}(t, kLo, kHi)
	}
	wg.Wait()
	return nil
}

// atomicAdd performs y += v with a CAS loop on the float64's bits.
func atomicAdd(addr *float64, v float64) {
	bits := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(bits)
		newV := math.Float64frombits(old) + v
		if atomic.CompareAndSwapUint64(bits, old, math.Float64bits(newV)) {
			return
		}
	}
}
