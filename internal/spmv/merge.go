package spmv

import (
	"fmt"
	"sort"
	"sync"

	"sparseorder/internal/sparse"
)

// The merge-based kernel of Merrill and Garland (paper §3.1, ref. [20]):
// the paper's 2D algorithm is a simplified version of it. The kernel
// models SpMV as a merge of the row-end offsets RowPtr[1..M] with the
// nonzero indices 0..NNZ-1; splitting the merge path into equal pieces
// balances rows AND nonzeros simultaneously, so even pathological
// matrices (millions of empty rows, or one giant row) split evenly.

// PlanMerge holds the merge-path split coordinates for a fixed matrix and
// thread count.
type PlanMerge struct {
	Threads  int
	StartRow []int // row coordinate of each thread's path start
	StartNZ  []int // nonzero coordinate of each thread's path start

	carryRow []int32
	carryVal []float64
}

// NewPlanMerge computes the merge-path split: thread t starts at the
// two-dimensional merge coordinate found by binary search on diagonal
// t·(rows+nnz)/threads.
func NewPlanMerge(a *sparse.CSR, threads int) (*PlanMerge, error) {
	if threads < 1 {
		return nil, errThreads(threads)
	}
	total := a.Rows + a.NNZ()
	p := &PlanMerge{
		Threads:  threads,
		StartRow: make([]int, threads+1),
		StartNZ:  make([]int, threads+1),
		carryRow: make([]int32, threads),
		carryVal: make([]float64, threads),
	}
	for t := 0; t <= threads; t++ {
		d := t * total / threads
		i := mergePathSearch(a.RowPtr, a.Rows, a.NNZ(), d)
		p.StartRow[t] = i
		p.StartNZ[t] = d - i
	}
	return p, nil
}

// mergePathSearch returns the row coordinate of the merge path on
// diagonal d: the smallest i with RowPtr[i+1] + i >= d (so that i row-ends
// and d-i nonzeros have been consumed).
func mergePathSearch(rowPtr []int, rows, nnz, d int) int {
	lo := d - nnz
	if lo < 0 {
		lo = 0
	}
	hi := d
	if hi > rows {
		hi = rows
	}
	// Binary search over i in [lo, hi] for the first i with
	// rowPtr[i+1]+i >= d; rowPtr[i+1]+i is strictly increasing in i.
	return lo + sort.Search(hi-lo, func(k int) bool {
		i := lo + k
		return rowPtr[i+1]+i >= d
	})
}

// CheckPlan reports whether the plan matches the matrix; like
// Plan2D.CheckPlan it is O(1) and run on every MulMerge call. A PlanMerge
// follows the same reuse contract as Plan2D: rebuild it whenever the
// matrix's structure changes.
func (p *PlanMerge) CheckPlan(a *sparse.CSR) error {
	if len(p.StartRow) != p.Threads+1 || len(p.StartNZ) != p.Threads+1 {
		return fmt.Errorf("spmv: malformed PlanMerge: threads=%d but %d/%d split points",
			p.Threads, len(p.StartRow), len(p.StartNZ))
	}
	if p.StartNZ[p.Threads] != a.NNZ() || p.StartRow[p.Threads] != a.Rows {
		return fmt.Errorf("spmv: PlanMerge built for a different matrix (plan covers %d nonzeros / %d rows, matrix has %d / %d); rebuild with NewPlanMerge",
			p.StartNZ[p.Threads], p.StartRow[p.Threads], a.NNZ(), a.Rows)
	}
	return nil
}

// MulMerge computes y = A·x with the merge-based kernel. Rows completed by
// a thread are written directly; the trailing partial row of each thread
// is carried out and added in a short sequential fix-up, mirroring the
// carry-out scheme of the original kernel.
func MulMerge(a *sparse.CSR, x, y []float64, p *PlanMerge) error {
	if err := checkDims(a, x, y); err != nil {
		return err
	}
	if err := p.CheckPlan(a); err != nil {
		return err
	}
	if p.Threads == 1 {
		serialUnchecked(a, x, y)
		return nil
	}
	var wg sync.WaitGroup
	for t := 0; t < p.Threads; t++ {
		rowLo, nzLo := p.StartRow[t], p.StartNZ[t]
		rowHi, nzHi := p.StartRow[t+1], p.StartNZ[t+1]
		wg.Add(1)
		go func(t, row, k, rowHi, kHi int) {
			defer wg.Done()
			sum := 0.0
			for row < rowHi {
				// Consume nonzeros up to the end of the current row, then
				// the row-end itself.
				end := a.RowPtr[row+1]
				for ; k < end; k++ {
					sum += a.Val[k] * x[a.ColIdx[k]]
				}
				y[row] = sum // prefix from earlier threads added in fix-up
				sum = 0
				row++
			}
			// Trailing partial row (if the thread's range ends mid-row).
			for ; k < kHi; k++ {
				sum += a.Val[k] * x[a.ColIdx[k]]
			}
			p.carryRow[t] = int32(row)
			p.carryVal[t] = sum
		}(t, rowLo, nzLo, rowHi, nzHi)
	}
	wg.Wait()
	for t := 0; t < p.Threads; t++ {
		if r := p.carryRow[t]; int(r) < a.Rows && p.carryVal[t] != 0 {
			y[r] += p.carryVal[t]
		}
	}
	return nil
}

func errThreads(threads int) error {
	return &threadsError{threads}
}

type threadsError struct{ threads int }

// Error includes the offending value, matching NewPlan2D's diagnostic; the
// original message dropped e.threads, which made "got 0" and "got -8"
// indistinguishable in study logs.
func (e *threadsError) Error() string {
	return fmt.Sprintf("spmv: threads must be >= 1, got %d", e.threads)
}
