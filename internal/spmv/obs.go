package spmv

import (
	"context"

	"sparseorder/internal/obs"
	"sparseorder/internal/sparse"
)

// NewPlan2DCtx is NewPlan2D reporting the plan-construction cost as an
// spmv/plan2d span when ctx carries an obs.Obs — plan building is a
// per-(matrix, thread-count) setup cost callers amortise over many Mul2D
// iterations, and the span makes that cost visible next to the kernel
// time it amortises into. Without an Obs it is exactly NewPlan2D.
func NewPlan2DCtx(ctx context.Context, a *sparse.CSR, threads int) (*Plan2D, error) {
	_, sp := obs.Start(ctx, "spmv/plan2d")
	p, err := NewPlan2D(a, threads)
	sp.End()
	return p, err
}

// NewPlanMergeCtx is NewPlanMerge reporting an spmv/planmerge span; see
// NewPlan2DCtx.
func NewPlanMergeCtx(ctx context.Context, a *sparse.CSR, threads int) (*PlanMerge, error) {
	_, sp := obs.Start(ctx, "spmv/planmerge")
	p, err := NewPlanMerge(a, threads)
	sp.End()
	return p, err
}
