// Package spmv implements the study's two shared-memory parallel sparse
// matrix-vector multiplication kernels for CSR matrices (paper §3.1):
//
//   - the 1D algorithm, which splits rows into equal-sized contiguous
//     blocks (the OpenMP "#pragma omp for" schedule) and is prone to load
//     imbalance, and
//   - the 2D algorithm, which splits the nonzeros evenly across threads and
//     handles rows that straddle thread boundaries specially, trading a
//     small one-time planning cost for perfect nonzero balance.
//
// All kernels compute y = A·x, overwriting y.
package spmv

import (
	"fmt"
	"sort"
	"sync"

	"sparseorder/internal/sparse"
)

// checkDims validates the vector lengths of a y = A·x entry point. Every
// exported kernel calls it on the calling goroutine before any worker is
// spawned, so a short vector surfaces as a clear error instead of an
// index-out-of-range panic inside an anonymous goroutine (which would
// kill the whole process unrecoverably).
func checkDims(a *sparse.CSR, x, y []float64) error {
	if len(x) < a.Cols {
		return fmt.Errorf("spmv: x has %d entries, need at least a.Cols = %d", len(x), a.Cols)
	}
	if len(y) < a.Rows {
		return fmt.Errorf("spmv: y has %d entries, need at least a.Rows = %d", len(y), a.Rows)
	}
	return nil
}

// Serial computes y = A·x on the calling goroutine; it is the reference
// implementation the parallel kernels are validated against.
func Serial(a *sparse.CSR, x, y []float64) error {
	if err := checkDims(a, x, y); err != nil {
		return err
	}
	serialUnchecked(a, x, y)
	return nil
}

func serialUnchecked(a *sparse.CSR, x, y []float64) {
	for i := 0; i < a.Rows; i++ {
		sum := 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			sum += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = sum
	}
}

// RowBlocks1D returns the row ranges of the 1D algorithm's static even row
// split: thread t owns rows [blocks[t], blocks[t+1]).
func RowBlocks1D(rows, threads int) []int {
	b := make([]int, threads+1)
	for t := 0; t <= threads; t++ {
		b[t] = t * rows / threads
	}
	return b
}

// ThreadNNZ1D returns the number of nonzeros each thread processes under
// the 1D even row split.
func ThreadNNZ1D(a *sparse.CSR, threads int) []int {
	b := RowBlocks1D(a.Rows, threads)
	nnz := make([]int, threads)
	for t := 0; t < threads; t++ {
		nnz[t] = a.RowPtr[b[t+1]] - a.RowPtr[b[t]]
	}
	return nnz
}

// Mul1D computes y = A·x with the 1D algorithm on the given number of
// threads (goroutines).
func Mul1D(a *sparse.CSR, x, y []float64, threads int) error {
	if err := checkDims(a, x, y); err != nil {
		return err
	}
	if threads <= 1 {
		serialUnchecked(a, x, y)
		return nil
	}
	b := RowBlocks1D(a.Rows, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo, hi := b[t], b[t+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				sum := 0.0
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					sum += a.Val[k] * x[a.ColIdx[k]]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// Plan2D holds the one-time preprocessing of the 2D algorithm for a fixed
// matrix and thread count: the nonzero split points and, for each thread,
// the first row its range touches. The paper amortises this cost over many
// SpMV iterations and excludes it from measurements; reusing a Plan2D does
// the same.
//
// Reuse contract: a Plan2D is valid only for the exact matrix it was built
// from. If the matrix's structure changes in any way (entries added or
// removed, rows permuted, a different matrix substituted), the plan must
// be rebuilt with NewPlan2D; Mul2D rejects a plan whose split points no
// longer cover the matrix. A plan may be reused for value-only updates
// that keep RowPtr identical. Plans are not safe for concurrent Mul2D
// calls sharing one plan (the per-thread partial buffers are reused);
// build one plan per concurrent consumer.
type Plan2D struct {
	Threads  int
	KSplit   []int // KSplit[t] = first nonzero of thread t; len threads+1
	RowStart []int // row containing KSplit[t] (or Rows when exhausted)

	partials [][]partial // per-thread partial row sums, reused across calls
}

type partial struct {
	row int
	sum float64
}

// NewPlan2D builds the 2D execution plan: thread t is assigned nonzeros
// [t·nnz/threads, (t+1)·nnz/threads).
func NewPlan2D(a *sparse.CSR, threads int) (*Plan2D, error) {
	if threads < 1 {
		return nil, fmt.Errorf("spmv: threads must be >= 1, got %d", threads)
	}
	nnz := a.NNZ()
	p := &Plan2D{
		Threads:  threads,
		KSplit:   make([]int, threads+1),
		RowStart: make([]int, threads+1),
		partials: make([][]partial, threads),
	}
	for t := 0; t <= threads; t++ {
		k := t * nnz / threads
		p.KSplit[t] = k
		// First row r with RowPtr[r+1] > k, i.e. the row containing
		// nonzero k; Rows when k == nnz.
		p.RowStart[t] = sort.Search(a.Rows, func(r int) bool { return a.RowPtr[r+1] > k })
	}
	for t := range p.partials {
		p.partials[t] = make([]partial, 0, 2)
	}
	return p, nil
}

// ThreadNNZ returns the nonzeros per thread under the plan (equal up to
// rounding by construction).
func (p *Plan2D) ThreadNNZ() []int {
	nnz := make([]int, p.Threads)
	for t := 0; t < p.Threads; t++ {
		nnz[t] = p.KSplit[t+1] - p.KSplit[t]
	}
	return nnz
}

// CheckPlan reports whether the plan matches the matrix: the split points
// must cover exactly the matrix's nonzeros and rows. The check is O(1), so
// Mul2D runs it on every call — a stale plan (built for a different matrix
// or an out-of-date structure) would otherwise silently compute garbage or
// panic inside a worker goroutine.
func (p *Plan2D) CheckPlan(a *sparse.CSR) error {
	if len(p.KSplit) != p.Threads+1 || len(p.RowStart) != p.Threads+1 {
		return fmt.Errorf("spmv: malformed Plan2D: threads=%d but %d/%d split points",
			p.Threads, len(p.KSplit), len(p.RowStart))
	}
	if p.KSplit[p.Threads] != a.NNZ() || p.RowStart[p.Threads] != a.Rows {
		return fmt.Errorf("spmv: Plan2D built for a different matrix (plan covers %d nonzeros / %d rows, matrix has %d / %d); rebuild with NewPlan2D",
			p.KSplit[p.Threads], p.RowStart[p.Threads], a.NNZ(), a.Rows)
	}
	return nil
}

// Mul2D computes y = A·x with the 2D (nonzero-balanced) algorithm using the
// given plan. Rows fully inside a thread's nonzero range are written
// directly; rows straddling a boundary are accumulated thread-locally and
// combined in a short sequential fix-up pass, avoiding atomics.
//
// The plan must have been built from this exact matrix (see the Plan2D
// reuse contract); a mismatched plan is rejected with an error.
func Mul2D(a *sparse.CSR, x, y []float64, p *Plan2D) error {
	if err := checkDims(a, x, y); err != nil {
		return err
	}
	if err := p.CheckPlan(a); err != nil {
		return err
	}
	if p.Threads == 1 {
		serialUnchecked(a, x, y)
		return nil
	}
	var wg sync.WaitGroup
	// Zero the output in parallel row blocks; boundary and empty rows rely
	// on it.
	zb := RowBlocks1D(a.Rows, p.Threads)
	for t := 0; t < p.Threads; t++ {
		lo, hi := zb[t], zb[t+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(y []float64) {
			defer wg.Done()
			for i := range y {
				y[i] = 0
			}
		}(y[lo:hi])
	}
	wg.Wait()

	for t := 0; t < p.Threads; t++ {
		kLo, kHi := p.KSplit[t], p.KSplit[t+1]
		if kLo >= kHi {
			p.partials[t] = p.partials[t][:0]
			continue
		}
		wg.Add(1)
		go func(t, kLo, kHi int) {
			defer wg.Done()
			parts := p.partials[t][:0]
			r := p.RowStart[t]
			for k := kLo; k < kHi; {
				rowEnd := a.RowPtr[r+1]
				hi := rowEnd
				if kHi < hi {
					hi = kHi
				}
				sum := 0.0
				for ; k < hi; k++ {
					sum += a.Val[k] * x[a.ColIdx[k]]
				}
				if a.RowPtr[r] >= kLo && rowEnd <= kHi {
					y[r] = sum // full row: exactly one owner
				} else {
					parts = append(parts, partial{r, sum})
				}
				if k == rowEnd {
					r++
				}
			}
			p.partials[t] = parts
		}(t, kLo, kHi)
	}
	wg.Wait()

	// Sequential fix-up: at most two partial rows per thread.
	for t := 0; t < p.Threads; t++ {
		for _, pr := range p.partials[t] {
			y[pr.row] += pr.sum
		}
	}
	return nil
}

// Mul2DFresh is a convenience wrapper building a throwaway plan; prefer
// NewPlan2D + Mul2D in loops.
func Mul2DFresh(a *sparse.CSR, x, y []float64, threads int) error {
	p, err := NewPlan2D(a, threads)
	if err != nil {
		return err
	}
	return Mul2D(a, x, y, p)
}

// Gflops converts an SpMV time in seconds to Gflop/s using the paper's
// convention of two flops per nonzero.
func Gflops(nnz int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return 2 * float64(nnz) / seconds / 1e9
}
