package spmv

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"sparseorder/internal/sparse"
)

func randomCSR(rng *rand.Rand, rows, cols, nnz int) *sparse.CSR {
	coo := sparse.NewCOO(rows, cols, nnz)
	for k := 0; k < nnz; k++ {
		coo.Append(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return a
}

func randomVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func vecsClose(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestSerialKnown(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 3)
	coo.Append(0, 0, 2)
	coo.Append(0, 2, 1)
	coo.Append(1, 1, -3)
	a, _ := coo.ToCSR()
	x := []float64{1, 2, 3}
	y := make([]float64, 2)
	Serial(a, x, y)
	if y[0] != 5 || y[1] != -6 {
		t.Errorf("y = %v, want [5 -6]", y)
	}
}

func TestMul1DMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(100)
		cols := 1 + rng.Intn(100)
		a := randomCSR(rng, rows, cols, rng.Intn(500))
		x := randomVec(rng, cols)
		want := make([]float64, rows)
		Serial(a, x, want)
		for _, threads := range []int{1, 2, 3, 7, 16, rows + 5} {
			got := make([]float64, rows)
			Mul1D(a, x, got, threads)
			if !vecsClose(want, got) {
				t.Fatalf("Mul1D(threads=%d) mismatch on %dx%d nnz=%d", threads, rows, cols, a.NNZ())
			}
		}
	}
}

func TestMul2DMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(100)
		cols := 1 + rng.Intn(100)
		a := randomCSR(rng, rows, cols, rng.Intn(500))
		x := randomVec(rng, cols)
		want := make([]float64, rows)
		Serial(a, x, want)
		for _, threads := range []int{1, 2, 3, 7, 16, 33} {
			p, err := NewPlan2D(a, threads)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, rows)
			Mul2D(a, x, got, p)
			if !vecsClose(want, got) {
				t.Fatalf("Mul2D(threads=%d) mismatch on %dx%d nnz=%d", threads, rows, cols, a.NNZ())
			}
			// Plans must be reusable.
			Mul2D(a, x, got, p)
			if !vecsClose(want, got) {
				t.Fatalf("Mul2D plan reuse mismatch (threads=%d)", threads)
			}
		}
	}
}

func TestMul2DQuick(t *testing.T) {
	f := func(seed int64, rowsRaw, colsRaw, nnzRaw uint16, threadsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := int(rowsRaw%200) + 1
		cols := int(colsRaw%200) + 1
		a := randomCSR(rng, rows, cols, int(nnzRaw%1000))
		x := randomVec(rng, cols)
		threads := int(threadsRaw%32) + 1
		want := make([]float64, rows)
		Serial(a, x, want)
		got := make([]float64, rows)
		if err := Mul2DFresh(a, x, got, threads); err != nil {
			return false
		}
		return vecsClose(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMul2DRowSpanningManyThreads(t *testing.T) {
	// One enormous row split across every thread plus trailing small rows.
	coo := sparse.NewCOO(4, 50, 60)
	rng := rand.New(rand.NewSource(3))
	for j := 0; j < 50; j++ {
		coo.Append(0, j, rng.NormFloat64())
	}
	coo.Append(2, 3, 1.5)
	coo.Append(3, 7, -2.5)
	a, _ := coo.ToCSR()
	x := randomVec(rng, 50)
	want := make([]float64, 4)
	Serial(a, x, want)
	for _, threads := range []int{2, 5, 13} {
		got := make([]float64, 4)
		if err := Mul2DFresh(a, x, got, threads); err != nil {
			t.Fatal(err)
		}
		if !vecsClose(want, got) {
			t.Fatalf("threads=%d: got %v want %v", threads, got, want)
		}
	}
}

func TestMul2DEmptyRowsAtBoundaries(t *testing.T) {
	// Rows 1, 2 and 4 are empty; splits land between nonzeros.
	coo := sparse.NewCOO(5, 5, 4)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 1)
	coo.Append(3, 2, 1)
	coo.Append(3, 3, 1)
	a, _ := coo.ToCSR()
	x := []float64{1, 1, 1, 1, 1}
	want := make([]float64, 5)
	Serial(a, x, want)
	for threads := 1; threads <= 6; threads++ {
		got := []float64{9, 9, 9, 9, 9} // poison: zeroing must happen
		if err := Mul2DFresh(a, x, got, threads); err != nil {
			t.Fatal(err)
		}
		if !vecsClose(want, got) {
			t.Fatalf("threads=%d: got %v want %v", threads, got, want)
		}
	}
}

func TestPlan2DBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(rng, 200, 200, 5000)
	for _, threads := range []int{2, 7, 16, 128} {
		p, err := NewPlan2D(a, threads)
		if err != nil {
			t.Fatal(err)
		}
		nnz := p.ThreadNNZ()
		total := 0
		for _, n := range nnz {
			total += n
			if d := n - a.NNZ()/threads; d < -1 || d > 1 {
				t.Errorf("threads=%d: thread nnz %d deviates from %d by more than 1", threads, n, a.NNZ()/threads)
			}
		}
		if total != a.NNZ() {
			t.Errorf("threads=%d: thread nnz sums to %d, want %d", threads, total, a.NNZ())
		}
	}
}

func TestRowBlocks1D(t *testing.T) {
	b := RowBlocks1D(10, 3)
	if b[0] != 0 || b[3] != 10 {
		t.Errorf("blocks = %v", b)
	}
	for t2 := 0; t2 < 3; t2++ {
		if b[t2] > b[t2+1] {
			t.Errorf("non-monotone blocks %v", b)
		}
	}
}

func TestThreadNNZ1D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 64, 64, 600)
	nnz := ThreadNNZ1D(a, 8)
	total := 0
	for _, n := range nnz {
		total += n
	}
	if total != a.NNZ() {
		t.Errorf("1D thread nnz sums to %d, want %d", total, a.NNZ())
	}
}

func TestPermutedSpMVConsistency(t *testing.T) {
	// (P·A·Pᵀ)·(P·x) = P·(A·x): reordering must not change SpMV results.
	rng := rand.New(rand.NewSource(6))
	n := 60
	a := randomCSR(rng, n, n, 700)
	x := randomVec(rng, n)
	p := sparse.Perm(rng.Perm(n))
	b, err := sparse.PermuteSymmetric(a, p)
	if err != nil {
		t.Fatal(err)
	}
	px := make([]float64, n)
	for newI, oldI := range p {
		px[newI] = x[oldI]
	}
	y := make([]float64, n)
	Serial(a, x, y)
	py := make([]float64, n)
	Serial(b, px, py)
	for newI, oldI := range p {
		if math.Abs(py[newI]-y[oldI]) > 1e-9 {
			t.Fatalf("permuted SpMV differs at %d", newI)
		}
	}
}

func TestGflops(t *testing.T) {
	if g := Gflops(1e9, 2.0); math.Abs(g-1) > 1e-12 {
		t.Errorf("Gflops = %v, want 1", g)
	}
	if g := Gflops(100, 0); g != 0 {
		t.Errorf("Gflops with zero time = %v, want 0", g)
	}
}

func TestNewPlan2DRejectsBadThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 4, 4, 6)
	if _, err := NewPlan2D(a, 0); err == nil {
		t.Error("accepted 0 threads")
	}
}

// Both plan constructors must report the rejected thread count in the
// error text; the merge kernel's threadsError used to drop its stored
// value, making "got 0" and "got -8" indistinguishable in study logs.
func TestBadThreadsErrorReportsValue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(rng, 4, 4, 6)
	for _, threads := range []int{0, -8} {
		want := fmt.Sprintf("got %d", threads)
		if _, err := NewPlan2D(a, threads); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("NewPlan2D(%d) error = %v, want it to contain %q", threads, err, want)
		}
		if _, err := NewPlanMerge(a, threads); err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("NewPlanMerge(%d) error = %v, want it to contain %q", threads, err, want)
		}
	}
}

func TestMul2DAtomicMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(80)
		cols := 1 + rng.Intn(80)
		a := randomCSR(rng, rows, cols, rng.Intn(400))
		x := randomVec(rng, cols)
		want := make([]float64, rows)
		Serial(a, x, want)
		for _, threads := range []int{1, 3, 8, 17} {
			p, err := NewPlan2D(a, threads)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, rows)
			Mul2DAtomic(a, x, got, p)
			if !vecsClose(want, got) {
				t.Fatalf("Mul2DAtomic(threads=%d) mismatch on %dx%d", threads, rows, cols)
			}
		}
	}
}

func TestAtomicAddConcurrent(t *testing.T) {
	var sum float64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				atomicAdd(&sum, 0.5)
			}
		}()
	}
	wg.Wait()
	if sum != 4000 {
		t.Errorf("atomicAdd lost updates: %v", sum)
	}
}

func TestMulMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(120)
		cols := 1 + rng.Intn(120)
		a := randomCSR(rng, rows, cols, rng.Intn(600))
		x := randomVec(rng, cols)
		want := make([]float64, rows)
		Serial(a, x, want)
		for _, threads := range []int{1, 2, 5, 9, 31} {
			p, err := NewPlanMerge(a, threads)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, rows)
			MulMerge(a, x, got, p)
			if !vecsClose(want, got) {
				t.Fatalf("MulMerge(threads=%d) mismatch on %dx%d nnz=%d", threads, rows, cols, a.NNZ())
			}
			MulMerge(a, x, got, p) // plan reuse
			if !vecsClose(want, got) {
				t.Fatalf("MulMerge plan reuse mismatch (threads=%d)", threads)
			}
		}
	}
}

func TestMulMergeManyEmptyRows(t *testing.T) {
	// The merge kernel's advantage over the plain 2D split: empty rows
	// count as work, so threads do not pile onto the nonzero rows.
	coo := sparse.NewCOO(1000, 10, 30)
	rng := rand.New(rand.NewSource(10))
	for k := 0; k < 30; k++ {
		coo.Append(rng.Intn(20), rng.Intn(10), rng.NormFloat64())
	}
	a, _ := coo.ToCSR()
	x := randomVec(rng, 10)
	want := make([]float64, 1000)
	Serial(a, x, want)
	for _, threads := range []int{2, 7, 16} {
		p, err := NewPlanMerge(a, threads)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float64, 1000)
		for i := range got {
			got[i] = 99 // poison: the kernel must write every row
		}
		MulMerge(a, x, got, p)
		if !vecsClose(want, got) {
			t.Fatalf("threads=%d mismatch", threads)
		}
	}
}

func TestMulMergeGiantRow(t *testing.T) {
	coo := sparse.NewCOO(3, 200, 210)
	rng := rand.New(rand.NewSource(11))
	for j := 0; j < 200; j++ {
		coo.Append(1, j, rng.NormFloat64())
	}
	coo.Append(0, 5, 2)
	coo.Append(2, 9, -3)
	a, _ := coo.ToCSR()
	x := randomVec(rng, 200)
	want := make([]float64, 3)
	Serial(a, x, want)
	for _, threads := range []int{2, 8, 16} {
		got := make([]float64, 3)
		p, err := NewPlanMerge(a, threads)
		if err != nil {
			t.Fatal(err)
		}
		MulMerge(a, x, got, p)
		if !vecsClose(want, got) {
			t.Fatalf("threads=%d: got %v want %v", threads, got, want)
		}
	}
}

func TestMergePathSearchInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomCSR(rng, 50, 50, 300)
	total := a.Rows + a.NNZ()
	prevI, prevK := 0, 0
	for d := 0; d <= total; d++ {
		i := mergePathSearch(a.RowPtr, a.Rows, a.NNZ(), d)
		k := d - i
		if i < prevI || k < prevK {
			t.Fatalf("merge path not monotone at d=%d", d)
		}
		if k < 0 || k > a.NNZ() || i < 0 || i > a.Rows {
			t.Fatalf("coordinates out of range at d=%d: (%d,%d)", d, i, k)
		}
		if i < a.Rows && (k < a.RowPtr[i] || k > a.RowPtr[i+1]) {
			t.Fatalf("nonzero coordinate %d outside row %d's range [%d,%d]", k, i, a.RowPtr[i], a.RowPtr[i+1])
		}
		prevI, prevK = i, k
	}
}

func TestNewPlanMergeRejectsBadThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCSR(rng, 4, 4, 6)
	if _, err := NewPlanMerge(a, 0); err == nil {
		t.Error("accepted 0 threads")
	}
}

func TestSerialTKnown(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 3)
	coo.Append(0, 0, 2)
	coo.Append(0, 2, 1)
	coo.Append(1, 1, -3)
	a, _ := coo.ToCSR()
	x := []float64{1, 2}
	y := make([]float64, 3)
	SerialT(a, x, y)
	if y[0] != 2 || y[1] != -6 || y[2] != 1 {
		t.Errorf("y = %v, want [2 -6 1]", y)
	}
}

func TestMulTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(90)
		cols := 1 + rng.Intn(90)
		a := randomCSR(rng, rows, cols, rng.Intn(400))
		x := randomVec(rng, rows)
		want := make([]float64, cols)
		Serial(a.Transpose(), x, want)
		for _, threads := range []int{1, 3, 8} {
			got := make([]float64, cols)
			MulT(a, x, got, threads)
			if !vecsClose(want, got) {
				t.Fatalf("MulT(threads=%d) mismatch on %dx%d", threads, rows, cols)
			}
		}
	}
}

// TestShortVectorsRejected checks that every entry point reports a short x
// or y as an error from the calling goroutine instead of an index
// out-of-range panic inside a worker (which would kill the process).
func TestShortVectorsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomCSR(rng, 20, 30, 80)
	p2, err := NewPlan2D(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := NewPlanMerge(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	okX, okY := randomVec(rng, a.Cols), make([]float64, a.Rows)
	okXT, okYT := randomVec(rng, a.Rows), make([]float64, a.Cols)
	cases := []struct {
		name string
		call func(x, y []float64) error
		x, y []float64
	}{
		{"Serial", func(x, y []float64) error { return Serial(a, x, y) }, okX, okY},
		{"Mul1D", func(x, y []float64) error { return Mul1D(a, x, y, 4) }, okX, okY},
		{"Mul2D", func(x, y []float64) error { return Mul2D(a, x, y, p2) }, okX, okY},
		{"Mul2DAtomic", func(x, y []float64) error { return Mul2DAtomic(a, x, y, p2) }, okX, okY},
		{"MulMerge", func(x, y []float64) error { return MulMerge(a, x, y, pm) }, okX, okY},
		{"SerialT", func(x, y []float64) error { return SerialT(a, x, y) }, okXT, okYT},
		{"MulT", func(x, y []float64) error { return MulT(a, x, y, 4) }, okXT, okYT},
	}
	for _, c := range cases {
		if err := c.call(c.x, c.y); err != nil {
			t.Errorf("%s rejected correctly sized vectors: %v", c.name, err)
		}
		if err := c.call(c.x[:len(c.x)-1], c.y); err == nil {
			t.Errorf("%s accepted short x", c.name)
		}
		if err := c.call(c.x, c.y[:len(c.y)-1]); err == nil {
			t.Errorf("%s accepted short y", c.name)
		}
	}
}

// TestStalePlanRejected checks the plan/matrix consistency guard: a plan
// built for one matrix must not silently compute garbage on another.
func TestStalePlanRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randomCSR(rng, 30, 30, 200)
	b := randomCSR(rng, 30, 30, 100) // same shape, different structure
	x := randomVec(rng, 30)
	y := make([]float64, 30)

	p2, err := NewPlan2D(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mul2D(b, x, y, p2); err == nil {
		t.Error("Mul2D accepted a plan built for a different matrix")
	}
	if err := Mul2DAtomic(b, x, y, p2); err == nil {
		t.Error("Mul2DAtomic accepted a plan built for a different matrix")
	}
	pm, err := NewPlanMerge(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := MulMerge(b, x, y, pm); err == nil {
		t.Error("MulMerge accepted a plan built for a different matrix")
	}

	// A malformed (hand-built) plan is rejected too.
	bad := &Plan2D{Threads: 4, KSplit: []int{0, a.NNZ()}, RowStart: []int{0, a.Rows}}
	if err := Mul2D(a, x, y, bad); err == nil {
		t.Error("Mul2D accepted a malformed plan")
	}
}
