package spmv

import (
	"fmt"
	"sync"

	"sparseorder/internal/sparse"
)

// checkDimsT validates vector lengths for the transposed product
// y = Aᵀ·x, where x spans rows and y spans columns.
func checkDimsT(a *sparse.CSR, x, y []float64) error {
	if len(x) < a.Rows {
		return fmt.Errorf("spmv: x has %d entries, need at least a.Rows = %d", len(x), a.Rows)
	}
	if len(y) < a.Cols {
		return fmt.Errorf("spmv: y has %d entries, need at least a.Cols = %d", len(y), a.Cols)
	}
	return nil
}

// SerialT computes y = Aᵀ·x by scattering row contributions into y.
func SerialT(a *sparse.CSR, x, y []float64) error {
	if err := checkDimsT(a, x, y); err != nil {
		return err
	}
	serialTUnchecked(a, x, y)
	return nil
}

func serialTUnchecked(a *sparse.CSR, x, y []float64) {
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[a.ColIdx[k]] += a.Val[k] * xi
		}
	}
}

// MulT computes y = Aᵀ·x in parallel: each thread scatters its row block
// into a private accumulator, and the accumulators are reduced into y in
// parallel column blocks. Nonsymmetric iterative methods (e.g. BiCG,
// least squares) need this kernel alongside the forward SpMV.
func MulT(a *sparse.CSR, x, y []float64, threads int) error {
	if err := checkDimsT(a, x, y); err != nil {
		return err
	}
	if threads <= 1 || a.Rows < 2*threads {
		serialTUnchecked(a, x, y)
		return nil
	}
	locals := make([][]float64, threads)
	rb := RowBlocks1D(a.Rows, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		lo, hi := rb[t], rb[t+1]
		wg.Add(1)
		go func(t, lo, hi int) {
			defer wg.Done()
			buf := make([]float64, a.Cols)
			for i := lo; i < hi; i++ {
				xi := x[i]
				if xi == 0 {
					continue
				}
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					buf[a.ColIdx[k]] += a.Val[k] * xi
				}
			}
			locals[t] = buf
		}(t, lo, hi)
	}
	wg.Wait()

	cb := RowBlocks1D(a.Cols, threads)
	for t := 0; t < threads; t++ {
		lo, hi := cb[t], cb[t+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				sum := 0.0
				for _, buf := range locals {
					sum += buf[j]
				}
				y[j] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}
