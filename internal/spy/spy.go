// Package spy renders sparsity patterns, reproducing the visual dimension
// of the paper's Figure 1: density maps of a matrix before and after
// reordering, as ASCII art for terminals and as binary PGM images for
// files.
package spy

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sparseorder/internal/sparse"
)

// Density bins the nonzeros of a into a rows×cols grid of cells and
// returns the per-cell counts (row-major).
func Density(a *sparse.CSR, rows, cols int) [][]int {
	grid := make([][]int, rows)
	for i := range grid {
		grid[i] = make([]int, cols)
	}
	if a.Rows == 0 || a.Cols == 0 {
		return grid
	}
	for i := 0; i < a.Rows; i++ {
		gi := i * rows / a.Rows
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			gj := int(a.ColIdx[k]) * cols / a.Cols
			grid[gi][gj]++
		}
	}
	return grid
}

// asciiRamp orders glyphs from empty to dense.
const asciiRamp = " .:-=+*#%@"

// ASCII renders the sparsity pattern as size×size characters (plus a
// border), darker glyphs meaning denser cells.
func ASCII(a *sparse.CSR, size int) string {
	grid := Density(a, size, size)
	maxCount := 0
	for _, row := range grid {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", size) + "+\n")
	for _, row := range grid {
		b.WriteByte('|')
		for _, c := range row {
			b.WriteByte(glyph(c, maxCount))
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", size) + "+\n")
	return b.String()
}

func glyph(count, maxCount int) byte {
	if count == 0 || maxCount == 0 {
		return asciiRamp[0]
	}
	idx := 1 + (len(asciiRamp)-2)*count/maxCount
	if idx >= len(asciiRamp) {
		idx = len(asciiRamp) - 1
	}
	return asciiRamp[idx]
}

// WritePGM writes the pattern as a binary PGM (P5) grayscale image of
// size×size pixels; empty cells are white, the densest cell black.
func WritePGM(w io.Writer, a *sparse.CSR, size int) error {
	grid := Density(a, size, size)
	maxCount := 0
	for _, row := range grid {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", size, size); err != nil {
		return err
	}
	for _, row := range grid {
		for _, c := range row {
			pixel := byte(255)
			if maxCount > 0 && c > 0 {
				// Log-ish shading: any nonzero is clearly visible.
				v := 200 - 200*c/maxCount
				pixel = byte(v)
			}
			if err := bw.WriteByte(pixel); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SideBySide renders several labelled patterns next to each other — the
// layout of the paper's Figure 1 (original vs RCM vs ND vs GP).
func SideBySide(labels []string, ms []*sparse.CSR, size int) string {
	blocks := make([][]string, len(ms))
	for i, m := range ms {
		blocks[i] = strings.Split(strings.TrimRight(ASCII(m, size), "\n"), "\n")
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%-*s", size+2, truncate(l, size+2))
	}
	b.WriteByte('\n')
	if len(blocks) == 0 {
		return b.String()
	}
	for line := 0; line < len(blocks[0]); line++ {
		for i := range blocks {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(blocks[i][line])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
