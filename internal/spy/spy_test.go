package spy

import (
	"bytes"
	"strings"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

func TestDensityCounts(t *testing.T) {
	coo := sparse.NewCOO(4, 4, 3)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 1)
	coo.Append(3, 3, 1)
	a, _ := coo.ToCSR()
	grid := Density(a, 2, 2)
	if grid[0][0] != 2 || grid[1][1] != 1 || grid[0][1] != 0 || grid[1][0] != 0 {
		t.Errorf("grid = %v", grid)
	}
	total := 0
	for _, row := range grid {
		for _, c := range row {
			total += c
		}
	}
	if total != a.NNZ() {
		t.Errorf("density loses nonzeros: %d of %d", total, a.NNZ())
	}
}

func TestDensityEmpty(t *testing.T) {
	a := &sparse.CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}
	grid := Density(a, 3, 3)
	for _, row := range grid {
		for _, c := range row {
			if c != 0 {
				t.Fatal("empty matrix with nonzero density")
			}
		}
	}
}

func TestASCIIShape(t *testing.T) {
	a := gen.Grid2D(10, 10)
	out := ASCII(a, 12)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 14 { // 12 rows + 2 border lines
		t.Fatalf("ASCII has %d lines, want 14", len(lines))
	}
	for _, l := range lines {
		if len(l) != 14 {
			t.Fatalf("line %q has width %d, want 14", l, len(l))
		}
	}
	// A banded matrix must be dense on the diagonal and empty in the
	// corners.
	if lines[1][12] != ' ' || lines[12][1] != ' ' {
		t.Error("corners of a banded pattern should be empty")
	}
	if lines[1][1] == ' ' {
		t.Error("diagonal of a banded pattern should be marked")
	}
}

func TestASCIIDensityShading(t *testing.T) {
	// A cell with all the nonzeros must use the darkest glyph.
	coo := sparse.NewCOO(8, 8, 10)
	for k := 0; k < 10; k++ {
		coo.Append(0, 0, 1)
	}
	coo.Append(7, 7, 1)
	a, _ := coo.ToCSR()
	out := ASCII(a, 4)
	if !strings.ContainsRune(out, rune(asciiRamp[len(asciiRamp)-1])) {
		t.Error("densest cell not shaded darkest")
	}
}

func TestWritePGM(t *testing.T) {
	a := gen.Grid2D(8, 8)
	var buf bytes.Buffer
	if err := WritePGM(&buf, a, 16); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P5\n16 16\n255\n")) {
		t.Fatalf("bad PGM header: %q", data[:20])
	}
	header := len("P5\n16 16\n255\n")
	if len(data) != header+16*16 {
		t.Fatalf("PGM payload %d bytes, want %d", len(data)-header, 16*16)
	}
	// Diagonal pixel dark, corner pixel white.
	if data[header] > 200 {
		t.Error("diagonal pixel should be dark")
	}
	if data[header+15] != 255 {
		t.Error("empty corner pixel should be white")
	}
}

func TestSideBySide(t *testing.T) {
	a := gen.Grid2D(6, 6)
	b := gen.Scramble(a, 1)
	out := SideBySide([]string{"original", "scrambled"}, []*sparse.CSR{a, b}, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 11 { // label row + 8 rows + 2 borders
		t.Fatalf("side-by-side has %d lines, want 11", len(lines))
	}
	if !strings.Contains(lines[0], "original") || !strings.Contains(lines[0], "scrambled") {
		t.Error("labels missing")
	}
	// Each body line holds two bordered blocks separated by a space.
	if len(lines[1]) != 2*(8+2)+1 {
		t.Errorf("line width %d, want %d", len(lines[1]), 2*(8+2)+1)
	}
}
