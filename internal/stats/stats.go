// Package stats provides the summary statistics the study reports:
// geometric means of speedups (Tables 3 and 4) and the five-number box
// statistics behind the speedup distribution plots (Figures 2 and 3).
package stats

import (
	"math"
	"sort"
)

// GeoMean returns the geometric mean of xs; non-positive entries are
// ignored (a speedup is always positive). Returns 0 for an empty input.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics; xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Box summarises a distribution the way the paper's box plots do: median,
// lower/upper quartiles, and whiskers at the most extreme points within
// 1.5×IQR of the quartiles; points beyond are outliers.
type Box struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
	Outliers                 int
	N                        int
}

// BoxStats computes the box summary of xs.
func BoxStats(xs []float64) Box {
	b := Box{N: len(xs)}
	if len(xs) == 0 {
		b.Min, b.Q1, b.Median, b.Q3, b.Max = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return b
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	b.Min, b.Max = s[0], s[len(s)-1]
	b.Q1 = Quantile(s, 0.25)
	b.Median = Quantile(s, 0.5)
	b.Q3 = Quantile(s, 0.75)
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Q3, b.Q1
	for _, x := range s {
		if x >= loFence && x <= hiFence {
			if x < b.WhiskerLo {
				b.WhiskerLo = x
			}
			if x > b.WhiskerHi {
				b.WhiskerHi = x
			}
		} else {
			b.Outliers++
		}
	}
	if b.Outliers == len(s) { // degenerate: all outliers (IQR = 0 artifacts)
		b.WhiskerLo, b.WhiskerHi = b.Min, b.Max
	}
	return b
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
