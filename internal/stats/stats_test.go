package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("GeoMean(1,1,1) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", g)
	}
	// Non-positive entries are skipped.
	if g := GeoMean([]float64{-1, 0, 4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean with junk = %v, want 4", g)
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.Float64() + 0.1
		}
		g1 := GeoMean(xs)
		for i := range xs {
			xs[i] *= 3
		}
		g2 := GeoMean(xs)
		return math.Abs(g2-3*g1) < 1e-9*g2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Quantile must not mutate its input.
	if xs[0] != 4 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestBoxStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := BoxStats(xs)
	if b.Median != 5 || b.Min != 1 || b.Max != 9 || b.N != 9 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles = %v, %v, want 3 and 7", b.Q1, b.Q3)
	}
	if b.Outliers != 0 || b.WhiskerLo != 1 || b.WhiskerHi != 9 {
		t.Errorf("whiskers/outliers: %+v", b)
	}
}

func TestBoxStatsOutliers(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100}
	b := BoxStats(xs)
	if b.Outliers == 0 {
		t.Error("100 should be flagged as an outlier")
	}
	if b.WhiskerHi >= 100 {
		t.Errorf("whisker %v should exclude the outlier", b.WhiskerHi)
	}
}

func TestBoxStatsEmpty(t *testing.T) {
	b := BoxStats(nil)
	if b.N != 0 || !math.IsNaN(b.Median) {
		t.Errorf("empty box = %+v", b)
	}
}

func TestMeanMinMax(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("empty mean = %v", m)
	}
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("minmax = %v, %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("empty minmax should be NaN")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
