package sparseorder

import (
	"context"
	"io"

	"sparseorder/internal/cholesky"
	"sparseorder/internal/experiments"
	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
	"sparseorder/internal/machine"
	"sparseorder/internal/metrics"
	"sparseorder/internal/reorder"
	"sparseorder/internal/solver"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// graphOf builds the symmetrized adjacency graph used by the graph-based
// orderings.
func graphOf(a *Matrix) (*graph.Graph, error) { return graph.FromMatrixSymmetrized(a) }

// Core sparse-matrix types.
type (
	// Matrix is a sparse matrix in compressed sparse row format with
	// 32-bit column indices and float64 values, the storage the study
	// benchmarks.
	Matrix = sparse.CSR
	// COO is a coordinate-format builder that converts to Matrix.
	COO = sparse.COO
	// Perm is a new-to-old permutation: row i of the reordered matrix is
	// row Perm[i] of the original.
	Perm = sparse.Perm
)

// NewCOO returns an empty coordinate-format matrix builder.
func NewCOO(rows, cols, nnz int) *COO { return sparse.NewCOO(rows, cols, nnz) }

// ReadMatrixMarket parses a Matrix Market stream (coordinate
// real/integer/pattern, general/symmetric/skew-symmetric) into CSR form.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// ReadMatrixMarketWorkers parses a Matrix Market stream with the parallel
// streaming ingestion pipeline: the entry section is split into
// line-aligned chunks parsed concurrently by workers goroutines
// (0 = GOMAXPROCS) and assembled into CSR in parallel. The result is
// byte-identical to ReadMatrixMarket at every worker count.
func ReadMatrixMarketWorkers(r io.Reader, workers int) (*Matrix, error) {
	return sparse.ReadMatrixMarketWorkers(r, workers)
}

// WriteMatrixMarket writes m in coordinate real general format.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return sparse.WriteMatrixMarket(w, m) }

// Symmetrize returns A + Aᵀ, the symmetric pattern the graph-based
// orderings operate on when the input is unsymmetric.
func Symmetrize(a *Matrix) (*Matrix, error) { return sparse.Symmetrize(a) }

// PermuteSymmetric returns P·A·Pᵀ.
func PermuteSymmetric(a *Matrix, p Perm) (*Matrix, error) { return sparse.PermuteSymmetric(a, p) }

// PermuteRows returns P·A (rows only, as the Gray ordering is applied).
func PermuteRows(a *Matrix, p Perm) (*Matrix, error) { return sparse.PermuteRows(a, p) }

// Ordering names one of the study's reordering algorithms.
type Ordering = reorder.Algorithm

// The orderings of the study (paper Table 1) plus the Original baseline.
const (
	Original = reorder.Original
	RCM      = reorder.RCM // Reverse Cuthill-McKee (bandwidth reduction)
	AMD      = reorder.AMD // approximate minimum degree (fill reduction)
	ND       = reorder.ND  // nested dissection (fill reduction)
	GP       = reorder.GP  // graph partitioning, edge-cut objective
	HP       = reorder.HP  // column-net hypergraph partitioning, cut-net
	Gray     = reorder.Gray
)

// Orderings lists the six algorithms in the paper's order.
var Orderings = reorder.Algorithms

// OrderingOptions configure the reordering algorithms; the zero value
// matches the paper's configuration.
type OrderingOptions = reorder.Options

// ComputeOrdering returns the permutation of the given algorithm without
// applying it.
func ComputeOrdering(alg Ordering, a *Matrix, opts OrderingOptions) (Perm, error) {
	return reorder.Compute(alg, a, opts)
}

// Reorder computes and applies an ordering, returning the reordered matrix
// and the permutation. Symmetric algorithms permute rows and columns
// simultaneously; Gray permutes rows only.
func Reorder(alg Ordering, a *Matrix, opts OrderingOptions) (*Matrix, Perm, error) {
	return reorder.Apply(alg, a, opts)
}

// SpMV computes y = A·x serially (the reference kernel). All SpMV entry
// points validate vector lengths (len(x) ≥ a.Cols, len(y) ≥ a.Rows) and
// return a descriptive error instead of panicking inside a goroutine.
func SpMV(a *Matrix, x, y []float64) error { return spmv.Serial(a, x, y) }

// SpMV1D computes y = A·x with the study's 1D kernel: rows are split into
// equal contiguous blocks, one per thread.
func SpMV1D(a *Matrix, x, y []float64, threads int) error { return spmv.Mul1D(a, x, y, threads) }

// Plan2D is the reusable preprocessing of the 2D (nonzero-balanced)
// kernel. A plan is valid only for the exact matrix it was built from and
// must be rebuilt after any structural change; SpMV2D rejects mismatched
// plans. See spmv.Plan2D for the full reuse contract.
type Plan2D = spmv.Plan2D

// NewPlan2D builds the 2D kernel's nonzero split for a fixed matrix and
// thread count; the cost is amortised over many SpMV iterations.
func NewPlan2D(a *Matrix, threads int) (*Plan2D, error) { return spmv.NewPlan2D(a, threads) }

// SpMV2D computes y = A·x with the study's 2D kernel using a prebuilt
// plan. The plan must have been built from this exact matrix; a stale or
// mismatched plan is rejected with an error.
func SpMV2D(a *Matrix, x, y []float64, p *Plan2D) error { return spmv.Mul2D(a, x, y, p) }

// PlanMerge is the reusable preprocessing of the merge-based kernel of
// Merrill and Garland, of which the study's 2D kernel is a simplified
// version.
type PlanMerge = spmv.PlanMerge

// NewPlanMerge builds the merge-path split for a fixed matrix and thread
// count.
func NewPlanMerge(a *Matrix, threads int) (*PlanMerge, error) { return spmv.NewPlanMerge(a, threads) }

// SpMVMerge computes y = A·x with the merge-based kernel, which balances
// rows and nonzeros simultaneously (robust even to millions of empty rows).
// Like SpMV2D it rejects a plan built for a different matrix.
func SpMVMerge(a *Matrix, x, y []float64, p *PlanMerge) error { return spmv.MulMerge(a, x, y, p) }

// SpMVTranspose computes y = Aᵀ·x in parallel using thread-private
// accumulators.
func SpMVTranspose(a *Matrix, x, y []float64, threads int) error {
	return spmv.MulT(a, x, y, threads)
}

// SolveOptions configure the conjugate-gradient solver, including which
// SpMV kernel runs each iteration's A·p product (SolveOptions.Kernel).
type SolveOptions = solver.Options

// SolveKernel selects the SpMV kernel used inside SolveCG. The planned
// kernels build their plan once per solve and reuse it every iteration —
// the paper's §4.7 amortization applied to kernel preprocessing.
type SolveKernel = solver.Kernel

// The CG SpMV kernels.
const (
	SolveKernel1D    = solver.Kernel1D // 1D row-split (default)
	SolveKernel2D    = solver.Kernel2D // 2D nonzero-balanced, plan reused across iterations
	SolveKernelMerge = solver.KernelMerge
)

// SolveResult reports a solve's outcome.
type SolveResult = solver.Result

// SolveCG solves A·x = b for SPD A with (optionally Jacobi-preconditioned)
// conjugate gradients built on the parallel SpMV kernels — the iterative
// workload over which the paper's §4.7 amortises reordering costs.
func SolveCG(a *Matrix, b []float64, opts SolveOptions) (*SolveResult, error) {
	return solver.CG(a, b, opts)
}

// Features bundles the study's order-sensitive matrix features.
type Features = metrics.Features

// ComputeFeatures evaluates bandwidth, profile, off-diagonal nonzero count
// (over a blocks×blocks grid) and the 1D load-imbalance factor.
func ComputeFeatures(a *Matrix, blocks, threads int) Features {
	return metrics.Compute(a, blocks, threads)
}

// FillRatio returns nnz(L)/nnz(A) for the Cholesky factor of the
// pattern-symmetric matrix a (paper §4.6), computed with the
// Gilbert-Ng-Peyton counting algorithm — no numeric factorisation.
func FillRatio(a *Matrix) (float64, error) { return cholesky.FillRatio(a) }

// CholeskyColCounts returns the per-column nonzero counts of the Cholesky
// factor L, diagonal included.
func CholeskyColCounts(a *Matrix) ([]int64, error) { return cholesky.ColCounts(a) }

// EliminationTree returns the parent array of the elimination tree.
func EliminationTree(a *Matrix) ([]int32, error) { return cholesky.EliminationTree(a) }

// CholeskyFactor is a numeric sparse Cholesky factor L with A = L·Lᵀ.
type CholeskyFactor = cholesky.Factor

// CholeskyFactorize numerically factorises the SPD matrix a with the
// up-looking simplicial algorithm; its structure is sized exactly by the
// Gilbert-Ng-Peyton counts, so it doubles as an executable validation of
// the fill analysis.
func CholeskyFactorize(a *Matrix) (*CholeskyFactor, error) { return cholesky.Factorize(a) }

// CholeskyFlops returns the factorisation flop count Σ c_j² implied by the
// column counts — the cost fill-reducing orderings minimise.
func CholeskyFlops(a *Matrix) (int64, error) { return cholesky.FlopCount(a) }

// GPSOrdering computes the Gibbs-Poole-Stockmeyer bandwidth-reducing
// ordering of the symmetrized matrix — an extension beyond the study's six
// evaluated algorithms (its §2.1.1 describes the method).
func GPSOrdering(a *Matrix) (Perm, error) {
	g, err := graphOf(a)
	if err != nil {
		return nil, err
	}
	return reorder.GibbsPooleStockmeyer(g), nil
}

// SloanOrdering computes Sloan's profile-reducing ordering of the
// symmetrized matrix with the given weights (non-positive weights take
// Sloan's recommended 1 and 2) — an extension targeting the profile
// feature of the study's Figure 5.
func SloanOrdering(a *Matrix, w1, w2 int) (Perm, error) {
	g, err := graphOf(a)
	if err != nil {
		return nil, err
	}
	return reorder.Sloan(g, w1, w2), nil
}

// SBDOrdering computes the separated-block-diagonal row/column ordering of
// Yzelman and Bisseling via recursive hypergraph bisection — the other
// hypergraph-based reordering family the paper cites (§2.1.3).
func SBDOrdering(a *Matrix, opts OrderingOptions) (rowPerm, colPerm Perm) {
	res := reorder.SeparatedBlockDiagonal(a, opts)
	return res.RowPerm, res.ColPerm
}

// MachineModel describes one of the eight CPUs of the study's Table 2.
type MachineModel = machine.Machine

// Kernel selects the 1D or 2D SpMV algorithm.
type Kernel = machine.Kernel

// The two SpMV kernels of the study.
const (
	Kernel1D = machine.Kernel1D
	Kernel2D = machine.Kernel2D
)

// Machines returns the models of the study's eight CPUs.
func Machines() []MachineModel { return machine.Table2 }

// MachineByName returns one machine model ("Skylake", "Ice Lake",
// "Naples", "Rome", "Milan A", "Milan B", "TX2", "Hi1620").
func MachineByName(name string) (MachineModel, bool) { return machine.ByName(name) }

// PredictSpMV estimates SpMV performance of a on the given machine model.
type Prediction = machine.Estimate

// PredictSpMV runs the locality- and balance-aware cost model used to
// reproduce the study's cross-architecture experiments.
func PredictSpMV(a *Matrix, m MachineModel, k Kernel) Prediction {
	return machine.EstimateSpMV(a, m, k)
}

// CollectionMatrix is one named matrix of the synthetic collection that
// stands in for the SuiteSparse corpus.
type CollectionMatrix = gen.Matrix

// Scale selects the size of the synthetic collection.
type Scale = gen.Scale

// Collection scales.
const (
	ScaleTest  = gen.ScaleTest
	ScaleStudy = gen.ScaleStudy
	ScaleLarge = gen.ScaleLarge
)

// Collection generates the deterministic synthetic matrix collection.
func Collection(scale Scale, seed int64) []CollectionMatrix { return gen.Collection(scale, seed) }

// StudyConfig controls a full study run (scale, seed, machines, worker
// count, per-matrix timeout, progress logging).
type StudyConfig = experiments.Config

// StudyResult holds the study's per-matrix results in collection order
// plus the matrices that failed to evaluate.
type StudyResult = experiments.StudyResult

// MatrixError records one matrix whose evaluation failed (its name, the
// ordering involved if the failure was ordering-specific, and the cause).
type MatrixError = experiments.MatrixError

// RunStudy evaluates the full synthetic collection concurrently with
// fault isolation: a matrix that fails — by error, panic, or timeout — is
// recorded in StudyResult.Failures instead of aborting the run, and
// results are deterministic for any worker count.
func RunStudy(cfg StudyConfig) (*StudyResult, error) { return experiments.RunStudy(cfg) }

// RunStudyContext is RunStudy with cancellation: cancelling the context
// stops the study and returns the context's error.
func RunStudyContext(ctx context.Context, cfg StudyConfig) (*StudyResult, error) {
	return experiments.RunStudyContext(ctx, cfg)
}

// RunStudyMatrices runs the study pipeline over an explicit matrix list
// (e.g. matrices read from Matrix Market files) instead of the generated
// collection, with the same concurrency and failure semantics.
func RunStudyMatrices(ctx context.Context, cfg StudyConfig, ms []CollectionMatrix) (*StudyResult, error) {
	return experiments.RunStudyMatrices(ctx, cfg, ms)
}
