package sparseorder_test

import (
	"bytes"
	"math"
	"testing"

	"sparseorder"
)

// TestFacadeQuickstart exercises the public API end to end the way the
// README quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	coll := sparseorder.Collection(sparseorder.ScaleTest, 42)
	if len(coll) == 0 {
		t.Fatal("empty collection")
	}
	var a *sparseorder.Matrix
	for _, m := range coll {
		if m.Name == "grid2d_perm" {
			a = m.A
		}
	}
	if a == nil {
		t.Fatal("grid2d_perm missing from collection")
	}

	b, perm, err := sparseorder.Reorder(sparseorder.GP, a, sparseorder.OrderingOptions{Parts: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !perm.IsValid() || b.NNZ() != a.NNZ() {
		t.Fatal("reordering broke the matrix")
	}

	before := sparseorder.ComputeFeatures(a, 16, 16)
	after := sparseorder.ComputeFeatures(b, 16, 16)
	if after.OffDiagNNZ >= before.OffDiagNNZ {
		t.Errorf("GP did not reduce off-diagonal nnz: %d -> %d", before.OffDiagNNZ, after.OffDiagNNZ)
	}

	x := make([]float64, b.Cols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	want := make([]float64, b.Rows)
	sparseorder.SpMV(b, x, want)
	got := make([]float64, b.Rows)
	sparseorder.SpMV1D(b, x, got, 4)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatal("1D kernel disagrees with serial")
		}
	}
	plan, err := sparseorder.NewPlan2D(b, 4)
	if err != nil {
		t.Fatal(err)
	}
	sparseorder.SpMV2D(b, x, got, plan)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatal("2D kernel disagrees with serial")
		}
	}
}

func TestFacadeOrderings(t *testing.T) {
	if len(sparseorder.Orderings) != 6 {
		t.Fatalf("expected 6 orderings, got %d", len(sparseorder.Orderings))
	}
	a := sparseorder.Collection(sparseorder.ScaleTest, 1)[0].A
	for _, alg := range sparseorder.Orderings {
		p, err := sparseorder.ComputeOrdering(alg, a, sparseorder.OrderingOptions{Parts: 8})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !p.IsValid() {
			t.Fatalf("%s: invalid permutation", alg)
		}
	}
}

func TestFacadeMatrixMarketRoundTrip(t *testing.T) {
	coo := sparseorder.NewCOO(3, 3, 3)
	coo.Append(0, 1, 2.5)
	coo.Append(2, 0, -1)
	coo.Append(1, 1, 4)
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sparseorder.WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := sparseorder.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("round trip changed matrix")
	}
}

func TestFacadeMachines(t *testing.T) {
	if len(sparseorder.Machines()) != 8 {
		t.Fatal("expected the study's 8 machines")
	}
	m, ok := sparseorder.MachineByName("Milan B")
	if !ok {
		t.Fatal("Milan B missing")
	}
	a := sparseorder.Collection(sparseorder.ScaleTest, 1)[0].A
	p := sparseorder.PredictSpMV(a, m, sparseorder.Kernel1D)
	if p.Gflops <= 0 {
		t.Error("prediction not positive")
	}
}

func TestFacadeCholesky(t *testing.T) {
	var a *sparseorder.Matrix
	for _, m := range sparseorder.Collection(sparseorder.ScaleTest, 1) {
		if m.SPD {
			a = m.A
			break
		}
	}
	if a == nil {
		t.Fatal("no SPD matrix in collection")
	}
	r, err := sparseorder.FillRatio(a)
	if err != nil || r < 0.5 {
		t.Fatalf("fill ratio %v, err %v", r, err)
	}
	counts, err := sparseorder.CholeskyColCounts(a)
	if err != nil || len(counts) != a.Rows {
		t.Fatalf("col counts: %v", err)
	}
	parent, err := sparseorder.EliminationTree(a)
	if err != nil || len(parent) != a.Rows {
		t.Fatalf("etree: %v", err)
	}
	s, err := sparseorder.Symmetrize(a)
	if err != nil || !s.IsStructurallySymmetric() {
		t.Fatalf("symmetrize: %v", err)
	}
}

func TestFacadePermutations(t *testing.T) {
	a := sparseorder.Collection(sparseorder.ScaleTest, 1)[0].A
	p, err := sparseorder.ComputeOrdering(sparseorder.RCM, a, sparseorder.OrderingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sparseorder.PermuteSymmetric(a, p); err != nil {
		t.Fatal(err)
	}
	if _, err := sparseorder.PermuteRows(a, p); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMergeKernel(t *testing.T) {
	a := sparseorder.Collection(sparseorder.ScaleTest, 1)[0].A
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	want := make([]float64, a.Rows)
	sparseorder.SpMV(a, x, want)
	p, err := sparseorder.NewPlanMerge(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, a.Rows)
	sparseorder.SpMVMerge(a, x, got, p)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatal("merge kernel disagrees with serial")
		}
	}
}

func TestFacadeCholeskyFactorize(t *testing.T) {
	var a *sparseorder.Matrix
	for _, m := range sparseorder.Collection(sparseorder.ScaleTest, 1) {
		if m.Name == "grid2d" {
			a = m.A
		}
	}
	f, err := sparseorder.CholeskyFactorize(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	// Residual check: A·x ≈ b.
	ax := make([]float64, a.Rows)
	sparseorder.SpMV(a, x, ax)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("solve residual too large at %d: %v", i, ax[i]-b[i])
		}
	}
	if _, err := sparseorder.CholeskyFlops(a); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExtensions(t *testing.T) {
	a := sparseorder.Collection(sparseorder.ScaleTest, 1)[0].A
	p, err := sparseorder.GPSOrdering(a)
	if err != nil || !p.IsValid() {
		t.Fatalf("GPS: %v", err)
	}
	rp, cp := sparseorder.SBDOrdering(a, sparseorder.OrderingOptions{Seed: 1})
	if !rp.IsValid() || !cp.IsValid() {
		t.Fatal("SBD permutations invalid")
	}
}

func TestFacadeSloan(t *testing.T) {
	a := sparseorder.Collection(sparseorder.ScaleTest, 1)[0].A
	p, err := sparseorder.SloanOrdering(a, 0, 0)
	if err != nil || !p.IsValid() {
		t.Fatalf("Sloan: %v", err)
	}
}
